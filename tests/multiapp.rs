//! Multi-application SMT integration tests (the Fig. 7 scenario): three
//! kernels share the machine with one idle context; each thread's
//! committed state must match its solo reference run, under every
//! mechanism.

use smtx::core::{ExnMechanism, Machine, MachineConfig};
use smtx::workloads::{kernel_reference, load_kernel, Kernel, MIXES};

const BUDGET: u64 = 4_000;

fn check_mix(mix: [Kernel; 3], mechanism: ExnMechanism) {
    let config = MachineConfig::paper_baseline(mechanism).with_threads(4);
    let mut m = Machine::new(config);
    let mut spaces = Vec::new();
    for (tid, &k) in mix.iter().enumerate() {
        spaces.push(load_kernel(&mut m, tid, k, 77 + tid as u64));
        m.set_budget(tid, BUDGET);
    }
    m.run(100_000_000);
    for (tid, &k) in mix.iter().enumerate() {
        assert_eq!(
            m.stats().retired(tid),
            BUDGET,
            "{} (thread {tid}) under {mechanism:?} unfinished",
            k.name()
        );
        let mut world = kernel_reference(k, 77 + tid as u64);
        world.run(BUDGET);
        assert_eq!(
            m.int_regs(tid),
            world.interp.int_regs(),
            "{} (thread {tid}) under {mechanism:?}: registers diverged",
            k.name()
        );
        assert_eq!(
            m.space(spaces[tid]).content_hash(m.phys()),
            world.space.content_hash(&world.pm),
            "{} (thread {tid}) under {mechanism:?}: memory diverged",
            k.name()
        );
    }
}

#[test]
fn mix_adm_gcc_vor_is_isolated_under_all_mechanisms() {
    for mech in [
        ExnMechanism::Traditional,
        ExnMechanism::Multithreaded,
        ExnMechanism::QuickStart,
        ExnMechanism::Hardware,
    ] {
        check_mix(MIXES[0], mech);
    }
}

#[test]
fn mix_apl_cmp_h2d_is_isolated_under_multithreaded() {
    check_mix(MIXES[1], ExnMechanism::Multithreaded);
}

#[test]
fn mix_cmp_gcc_mph_is_isolated_under_multithreaded() {
    check_mix(MIXES[7], ExnMechanism::Multithreaded);
}

#[test]
fn mix_dbl_gcc_h2d_is_isolated_under_quickstart() {
    check_mix(MIXES[3], ExnMechanism::QuickStart);
}

/// Three compress instances compete hard for the single idle context —
/// reversion to trapping must kick in and stay architecturally clean.
#[test]
fn contended_handler_context_reverts_cleanly() {
    let mix = [Kernel::Compress, Kernel::Compress, Kernel::Compress];
    let config = MachineConfig::paper_baseline(ExnMechanism::Multithreaded).with_threads(4);
    let mut m = Machine::new(config);
    for (tid, &kernel) in mix.iter().enumerate() {
        load_kernel(&mut m, tid, kernel, 200 + tid as u64);
        m.set_budget(tid, BUDGET);
    }
    m.run(100_000_000);
    for (tid, &kernel) in mix.iter().enumerate() {
        assert_eq!(m.stats().retired(tid), BUDGET);
        let mut world = kernel_reference(kernel, 200 + tid as u64);
        world.run(BUDGET);
        assert_eq!(m.int_regs(tid), world.interp.int_regs(), "thread {tid}");
    }
    assert!(m.stats().handlers_spawned > 0);
}
