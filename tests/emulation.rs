//! Paper §6 (generalized mechanism): emulated-instruction exceptions.
//!
//! With `emulate_divu` set, `DIVU` is not implemented in hardware: it
//! raises an exception serviced by a handler thread that reads the
//! operands from privileged scratch registers, computes the quotient by
//! shift-subtract, and writes the excepting instruction's destination with
//! `MTDST`. The committed state must match the interpreter, which executes
//! `DIVU` natively — the strongest possible check of the register
//! communication path.

use smtx::core::{ExnMechanism, Machine, MachineConfig, ThreadState};
use smtx::isa::{ProgramBuilder, Reg};
use smtx::workloads::{emul_divu_handler, pal_handler, reference_world};

fn division_program(pairs: &[(u64, u64)]) -> smtx::isa::Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg(10), 0); // checksum of quotients
    for &(a, d) in pairs {
        b.li(Reg(1), a);
        b.li(Reg(2), d);
        b.divu(Reg(3), Reg(1), Reg(2));
        b.add(Reg(10), Reg(10), Reg(3));
        // Independent post-exception work the handler should overlap with.
        b.addi(Reg(4), Reg(4), 7);
        b.xor(Reg(5), Reg(5), Reg(4));
    }
    b.halt();
    b.build().unwrap()
}

fn emulating_machine(
    program: &smtx::isa::Program,
    mechanism: ExnMechanism,
    threads: usize,
) -> Machine {
    let config = MachineConfig::paper_baseline(mechanism)
        .with_threads(threads)
        .with_emulated_divu();
    let mut m = Machine::new(config);
    m.install_pal_handler(&pal_handler());
    m.install_emul_handler(&emul_divu_handler());
    m.attach_program(0, program);
    m
}

const CASES: &[(u64, u64)] = &[
    (100, 7),
    (u64::MAX, 3),
    (5, 9),
    (0, 4),
    (42, 1),
    (1 << 63, 2),
    (999_999_999_999, 31_337),
    (17, 0), // division by zero: architected result 0
];

#[test]
fn emulated_divide_matches_native_semantics() {
    let program = division_program(CASES);
    let mut m = emulating_machine(&program, ExnMechanism::Multithreaded, 2);
    m.run(2_000_000);
    assert_eq!(m.thread_state(0), ThreadState::Halted, "program must finish");

    // The interpreter executes DIVU natively.
    let mut world = reference_world(&program, |_, _, _| {});
    world.run(u64::MAX);
    assert_eq!(m.int_regs(0), world.interp.int_regs());
    assert_eq!(
        m.stats().emulations_spawned as usize,
        CASES.len(),
        "one handler per DIVU"
    );
    assert_eq!(m.stats().emulations_committed as usize, CASES.len());
    // The handler really ran in a separate context: hundreds of PAL
    // instructions retired (64 shift-subtract iterations per divide).
    assert!(m.stats().threads[1].retired_pal > 100);
}

#[test]
fn emulated_divide_works_under_quickstart() {
    let program = division_program(&CASES[..4]);
    let mut m = emulating_machine(&program, ExnMechanism::QuickStart, 2);
    m.run(2_000_000);
    assert_eq!(m.thread_state(0), ThreadState::Halted);
    let mut world = reference_world(&program, |_, _, _| {});
    world.run(u64::MAX);
    assert_eq!(m.int_regs(0), world.interp.int_regs());
}

/// Emulation and TLB-miss handling coexist: a program that both divides
/// and strides over cold pages exercises two handler kinds, possibly
/// concurrently (two spare contexts).
#[test]
fn emulation_and_tlb_misses_coexist() {
    const DATA: u64 = 0x2000_0000;
    let mut b = ProgramBuilder::new();
    b.li(Reg(10), DATA);
    b.li(Reg(11), 0);
    b.li(Reg(29), 12);
    b.label("loop");
    b.ldq(Reg(1), Reg(10), 0); // cold page -> TLB miss
    b.addi(Reg(1), Reg(1), 97);
    b.li(Reg(2), 5);
    b.divu(Reg(3), Reg(1), Reg(2)); // -> emulation
    b.add(Reg(11), Reg(11), Reg(3));
    b.li(Reg(4), 8192);
    b.add(Reg(10), Reg(10), Reg(4));
    b.addi(Reg(29), Reg(29), -1);
    b.bne(Reg(29), "loop");
    b.halt();
    let program = b.build().unwrap();

    let mut m = emulating_machine(&program, ExnMechanism::Multithreaded, 3);
    {
        let (sp, pm, alloc) = m.vm_parts(0);
        sp.map_region(pm, alloc, DATA, 12);
        for p in 0..12u64 {
            sp.write_u64(pm, DATA + p * 8192, p * 1000 + 3).unwrap();
        }
    }
    m.run(4_000_000);
    assert_eq!(m.thread_state(0), ThreadState::Halted);
    // Every cold page was serviced — by a handler thread when a context
    // was idle, by reverting to the trap otherwise (contexts are also
    // busy emulating divides here).
    assert!(
        m.stats().handlers_spawned + m.stats().traps >= 12,
        "all 12 cold pages serviced (spawned={} traps={})",
        m.stats().handlers_spawned,
        m.stats().traps
    );
    assert_eq!(m.stats().emulations_committed, 12, "emulations ran");

    let mut world = reference_world(&program, |sp, pm, alloc| {
        sp.map_region(pm, alloc, DATA, 12);
        for p in 0..12u64 {
            sp.write_u64(pm, DATA + p * 8192, p * 1000 + 3).unwrap();
        }
    });
    world.run(u64::MAX);
    assert_eq!(m.int_regs(0), world.interp.int_regs());
}
