//! The runner's contract: a `RunKey` names a bit-exact simulation result.
//!
//! The same experiment point must yield identical `Stats` whether it is
//! computed serially, on a multi-worker pool, or served from the memoizing
//! cache — otherwise parallel experiment binaries could print different
//! rows than the seed's serial loops.

use smtx_bench::{config_with_idle, runner::perfect_of, Job, Runner};
use smtx_core::ExnMechanism;
use smtx_workloads::Kernel;

const SEED: u64 = 42;
const INSTS: u64 = 8_000;

fn jobs_for(kernels: &[Kernel]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for &kernel in kernels {
        jobs.push(Job::Ref { kernel, seed: SEED, insts: INSTS });
        for mech in [ExnMechanism::Traditional, ExnMechanism::Multithreaded] {
            let config = config_with_idle(mech, 1);
            jobs.push(Job::Sim { kernel, seed: SEED, insts: INSTS, config: config.clone() });
            jobs.push(Job::Sim { kernel, seed: SEED, insts: INSTS, config: perfect_of(&config) });
        }
    }
    jobs
}

#[test]
fn serial_and_parallel_runs_produce_identical_stats() {
    let kernels = [Kernel::Compress, Kernel::Gcc, Kernel::Murphi];
    let serial = Runner::new(1);
    let parallel = Runner::new(4);
    serial.prefetch(jobs_for(&kernels));
    parallel.prefetch(jobs_for(&kernels));

    for &kernel in &kernels {
        for mech in [ExnMechanism::Traditional, ExnMechanism::Multithreaded] {
            for config in [config_with_idle(mech, 1), perfect_of(&config_with_idle(mech, 1))] {
                let a = serial.run(kernel, SEED, INSTS, &config);
                let b = parallel.run(kernel, SEED, INSTS, &config);
                assert_eq!(
                    a.stats, b.stats,
                    "{} under {mech:?} differs between jobs=1 and jobs=4",
                    kernel.name()
                );
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.arch_misses, b.arch_misses);
            }
        }
    }
    // Everything above must have been served from the prefetched cache.
    assert_eq!(serial.stats().unique_runs, parallel.stats().unique_runs);
}

#[test]
fn cached_results_match_fresh_computation() {
    let config = config_with_idle(ExnMechanism::Multithreaded, 1);
    let warm = Runner::new(2);
    warm.prefetch(vec![Job::Sim {
        kernel: Kernel::Vortex,
        seed: SEED,
        insts: INSTS,
        config: config.clone(),
    }]);
    let cached = warm.run(Kernel::Vortex, SEED, INSTS, &config);
    let hits = warm.stats().cache_hits;
    assert!(hits >= 1, "second query must be a cache hit");

    let cold = Runner::new(1).run(Kernel::Vortex, SEED, INSTS, &config);
    assert_eq!(cached.stats, cold.stats, "cache must be bit-exact");
}
