//! Property-based differential testing: proptest drives random program
//! seeds and mechanism choices; any divergence shrinks to a minimal seed.

use proptest::prelude::*;
use smtx::core::{ExnMechanism, Machine, MachineConfig, ThreadState};
use smtx::workloads::{pal_handler, randprog, reference_world};

fn arb_mechanism() -> impl Strategy<Value = ExnMechanism> {
    prop_oneof![
        Just(ExnMechanism::PerfectTlb),
        Just(ExnMechanism::Traditional),
        Just(ExnMechanism::Multithreaded),
        Just(ExnMechanism::QuickStart),
        Just(ExnMechanism::Hardware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The machine's committed state equals the interpreter's for any
    /// generated program under any mechanism and any context count.
    #[test]
    fn machine_equals_interpreter(
        seed in 1000u64..4000,
        mechanism in arb_mechanism(),
        threads in 1usize..4,
    ) {
        let rp = randprog::generate(seed);
        let mut world = reference_world(&rp.program, |s, p, a| rp.setup(s, p, a));
        let summary = world.run(2_000_000);
        prop_assert!(summary.halted);

        let config = MachineConfig::paper_baseline(mechanism).with_threads(threads);
        let mut m = Machine::new(config);
        m.install_pal_handler(&pal_handler());
        let space = m.attach_program(0, &rp.program);
        {
            let (sp, pm, alloc) = m.vm_parts(space);
            rp.setup(sp, pm, alloc);
        }
        m.run(80_000_000);
        prop_assert_eq!(m.thread_state(0), ThreadState::Halted);
        prop_assert_eq!(m.int_regs(0), world.interp.int_regs());
        prop_assert_eq!(m.fp_regs(0), world.interp.fp_regs());
        prop_assert_eq!(
            m.space(space).content_hash(m.phys()),
            world.space.content_hash(&world.pm)
        );
    }

    /// Budget freezing commits an exact architectural prefix regardless of
    /// mechanism: stopping at any instruction count yields interpreter
    /// state.
    #[test]
    fn any_stopping_point_is_architectural(
        seed in 1000u64..2000,
        budget in 50u64..2000,
        mechanism in arb_mechanism(),
    ) {
        let rp = randprog::generate(seed);
        let mut world = reference_world(&rp.program, |s, p, a| rp.setup(s, p, a));
        let summary = world.run(budget);

        let config = MachineConfig::paper_baseline(mechanism).with_threads(2);
        let mut m = Machine::new(config);
        m.install_pal_handler(&pal_handler());
        let space = m.attach_program(0, &rp.program);
        {
            let (sp, pm, alloc) = m.vm_parts(space);
            rp.setup(sp, pm, alloc);
        }
        m.set_budget(0, budget);
        m.run(80_000_000);
        prop_assert_eq!(m.stats().retired(0), summary.retired);
        prop_assert_eq!(m.int_regs(0), world.interp.int_regs());
        prop_assert_eq!(
            m.space(space).content_hash(m.phys()),
            world.space.content_hash(&world.pm)
        );
    }
}
