//! Randomized differential testing: a seeded driver sweeps random program
//! seeds, mechanism choices and context counts; any divergence reports the
//! exact (seed, mechanism, threads) triple so it can be replayed directly.

use smtx::core::{ExnMechanism, Machine, MachineConfig, ThreadState};
use smtx::workloads::{pal_handler, randprog, reference_world};
use smtx_rng::rngs::StdRng;
use smtx_rng::{RngExt, SeedableRng};

fn pick_mechanism(rng: &mut StdRng) -> ExnMechanism {
    ExnMechanism::ALL[rng.random_range(0..ExnMechanism::ALL.len())]
}

/// The machine's committed state equals the interpreter's for any generated
/// program under any mechanism and any context count.
#[test]
fn machine_equals_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x5eed_d1ff);
    for _ in 0..24 {
        let seed = rng.random_range(1000u64..4000);
        let mechanism = pick_mechanism(&mut rng);
        let threads = rng.random_range(1usize..4);

        let rp = randprog::generate(seed);
        let mut world = reference_world(&rp.program, |s, p, a| rp.setup(s, p, a));
        let summary = world.run(2_000_000);
        assert!(summary.halted, "seed {seed}: reference must halt");

        let config = MachineConfig::paper_baseline(mechanism).with_threads(threads);
        let mut m = Machine::new(config);
        m.install_pal_handler(&pal_handler());
        let space = m.attach_program(0, &rp.program);
        {
            let (sp, pm, alloc) = m.vm_parts(space);
            rp.setup(sp, pm, alloc);
        }
        m.run(80_000_000);
        let ctx = format!("seed {seed} {mechanism:?} threads {threads}");
        assert_eq!(m.thread_state(0), ThreadState::Halted, "{ctx}: not halted");
        assert_eq!(m.int_regs(0), world.interp.int_regs(), "{ctx}: int regs");
        assert_eq!(m.fp_regs(0), world.interp.fp_regs(), "{ctx}: fp regs");
        assert_eq!(
            m.space(space).content_hash(m.phys()),
            world.space.content_hash(&world.pm),
            "{ctx}: memory image"
        );
    }
}

/// Budget freezing commits an exact architectural prefix regardless of
/// mechanism: stopping at any instruction count yields interpreter state.
#[test]
fn any_stopping_point_is_architectural() {
    let mut rng = StdRng::seed_from_u64(0x5eed_f00d);
    for _ in 0..24 {
        let seed = rng.random_range(1000u64..2000);
        let budget = rng.random_range(50u64..2000);
        let mechanism = pick_mechanism(&mut rng);

        let rp = randprog::generate(seed);
        let mut world = reference_world(&rp.program, |s, p, a| rp.setup(s, p, a));
        let summary = world.run(budget);

        let config = MachineConfig::paper_baseline(mechanism).with_threads(2);
        let mut m = Machine::new(config);
        m.install_pal_handler(&pal_handler());
        let space = m.attach_program(0, &rp.program);
        {
            let (sp, pm, alloc) = m.vm_parts(space);
            rp.setup(sp, pm, alloc);
        }
        m.set_budget(0, budget);
        m.run(80_000_000);
        let ctx = format!("seed {seed} budget {budget} {mechanism:?}");
        assert_eq!(m.stats().retired(0), summary.retired, "{ctx}: retired");
        assert_eq!(m.int_regs(0), world.interp.int_regs(), "{ctx}: int regs");
        assert_eq!(
            m.space(space).content_hash(m.phys()),
            world.space.content_hash(&world.pm),
            "{ctx}: memory image"
        );
    }
}
