//! Tier-1 soundness: functional fast-forward + restore is architecturally
//! exact, and a `skip == 0` checkpoint restore is bit-identical to loading
//! the kernel directly.
//!
//! The contract under test: for any kernel and any configuration, running
//! the detailed machine from scratch for `skip + insts` instructions and
//! running it for `insts` instructions from a `skip`-instruction functional
//! checkpoint must retire into the *same architectural state* — registers
//! and the memory image.

use smtx::core::{ExnMechanism, Machine, MachineConfig};
use smtx::workloads::{load_kernel, Kernel};
use smtx_bench::{config_with_idle, make_checkpoint, make_mix_checkpoint, run_restored};

const SEED: u64 = 42;
const SKIP: u64 = 6_000;
const INSTS: u64 = 4_000;
const CAP: u64 = 50_000_000;

/// Architectural fingerprint of thread `tid`: committed registers plus the
/// content hash of its address space.
fn arch_state(m: &Machine, tid: usize, space: usize) -> ([u64; 32], [u64; 32], u64) {
    (
        *m.int_regs(tid),
        *m.fp_regs(tid),
        m.space(space).content_hash(m.phys()),
    )
}

fn from_scratch(kernel: Kernel, config: MachineConfig, insts: u64) -> Machine {
    let mut m = Machine::new(config);
    load_kernel(&mut m, 0, kernel, SEED);
    m.set_budget(0, insts);
    m.run(CAP);
    assert_eq!(m.stats().retired(0), insts, "{} from scratch", kernel.name());
    m
}

/// Fast-forwarding through the interpreter and finishing on the detailed
/// machine retires the same architectural state as the detailed machine
/// running the whole distance — per mechanism.
#[test]
fn restored_run_matches_detailed_machine_from_scratch() {
    for kernel in [Kernel::Compress, Kernel::Gcc, Kernel::Hydro2d] {
        let ck = make_checkpoint(kernel, SEED, SKIP);
        for mech in [
            ExnMechanism::PerfectTlb,
            ExnMechanism::Traditional,
            ExnMechanism::Multithreaded,
        ] {
            let config = config_with_idle(mech, 1);
            let scratch = from_scratch(kernel, config.clone(), SKIP + INSTS);
            let mut restored = Machine::new(config);
            restored.restore(&ck);
            restored.set_budget(0, INSTS);
            restored.run(CAP);
            assert_eq!(restored.stats().retired(0), INSTS);
            let space = ck.threads()[0].space;
            assert_eq!(
                arch_state(&scratch, 0, space),
                arch_state(&restored, 0, space),
                "{} under {mech:?}: fast-forwarded state must match from-scratch",
                kernel.name()
            );
        }
    }
}

/// A `skip == 0` restore is not merely architecturally equal to the direct
/// load path — the *entire run* (every statistic) is bit-identical, because
/// restore rebuilds exactly the state `load_kernel` creates.
#[test]
fn zero_skip_restore_is_bit_identical_to_direct_load() {
    for kernel in [Kernel::Compress, Kernel::Vortex] {
        let ck = make_checkpoint(kernel, SEED, 0);
        let config = config_with_idle(ExnMechanism::Multithreaded, 1);
        let direct = from_scratch(kernel, config.clone(), INSTS);
        let mut restored = Machine::new(config);
        restored.restore(&ck);
        restored.set_budget(0, INSTS);
        restored.run(CAP);
        assert_eq!(
            direct.stats(),
            restored.stats(),
            "{}: skip-0 restore must be the load path, bit for bit",
            kernel.name()
        );
    }
}

/// One checkpoint serves every configuration of a sweep: restoring the same
/// checkpoint under different mechanisms yields the same architectural
/// state (the mechanisms differ only in time).
#[test]
fn one_checkpoint_serves_every_configuration() {
    let ck = make_checkpoint(Kernel::Murphi, SEED, SKIP);
    let baseline = run_restored(&ck, INSTS, config_with_idle(ExnMechanism::PerfectTlb, 1), true);
    for mech in [ExnMechanism::Traditional, ExnMechanism::Hardware, ExnMechanism::QuickStart] {
        let r = run_restored(&ck, INSTS, config_with_idle(mech, 1), true);
        assert_eq!(r.retired, baseline.retired);
        assert_eq!(
            r.arch_misses, baseline.arch_misses,
            "window miss count is config-independent"
        );
        assert!(
            r.cycles >= baseline.cycles,
            "{mech:?} cannot beat the perfect TLB"
        );
    }
}

/// Multiprogrammed mixes fast-forward exactly too: address spaces own
/// disjoint physical frames, so the sequential per-thread interpreter pass
/// matches each thread of the detailed SMT machine run from scratch.
#[test]
fn mix_checkpoint_matches_from_scratch_smt_run() {
    let mix = [Kernel::Compress, Kernel::Gcc, Kernel::Murphi];
    let skip = 2_000;
    let insts = 1_500;
    let config = MachineConfig::paper_baseline(ExnMechanism::Multithreaded).with_threads(4);

    let mut scratch = Machine::new(config.clone());
    for (tid, &k) in mix.iter().enumerate() {
        load_kernel(&mut scratch, tid, k, SEED + tid as u64);
    }
    for tid in 0..3 {
        scratch.set_budget(tid, skip + insts);
    }
    scratch.run(CAP);

    let ck = make_mix_checkpoint(mix, SEED, skip);
    let mut restored = Machine::new(config);
    restored.restore(&ck);
    for tid in 0..3 {
        restored.set_budget(tid, insts);
    }
    restored.run(CAP);

    for (tid, tc) in ck.threads().iter().enumerate() {
        assert_eq!(scratch.stats().retired(tid), skip + insts);
        assert_eq!(restored.stats().retired(tid), insts);
        assert_eq!(
            arch_state(&scratch, tid, tc.space),
            arch_state(&restored, tid, tc.space),
            "mix thread {tid}: fast-forwarded state must match from-scratch"
        );
    }
}
