#!/usr/bin/env bash
# Measures the experiment wall clocks and records them (with a per-PR
# trajectory) in BENCH_fig5.json, BENCH_fig2.json and BENCH_fig7.json.
#
# Correctness gates (run before any timing): the two-tier engine is an
# optimization, not an approximation, so every mode must print identical
# rows —
#   1. fig5_naive vs fig5 at skip 0 (the PR 1 gate: memoizing runner);
#   2. fig5 with --checkpoint on/off and --idle-skip on/off, at skip 0 and
#      at skip > 0, plus fig5_naive under fast-forward.
#
# Timings (all covering the same SKIP+DETAILED instruction window):
#   pr1_path — fig5 --insts N --checkpoint off --idle-skip off: the PR 1
#              algorithm on the current build;
#   idle_skip — fig5 --insts N: tier 2 only;
#   two_tier — fig5 --insts DETAILED --skip SKIP: tier 1 + tier 2, the
#              headline (rows differ from the above — the measurement
#              window moved — but are themselves mode-independent);
#   two_tier_check — the same window with --check on, so the pipeline
#              sanitizer's overhead stays visible (DESIGN.md §11).
#
# The recorded speedup compares two_tier against the wall time recorded by
# the previous PR in BENCH_fig5.json (the perf trajectory), falling back to
# pr1_path on the current build when no recording exists.
#
# Every run records under an explicit PR number (--pr N, required): history
# entries carry the PR that produced them, not their position in the list,
# so PRs that skip a measurement do not shift later labels. Re-running
# within the same PR replaces that PR's entry instead of appending. Each
# entry is labeled with the engine algorithm that PR ran (--algo overrides
# the default, which describes the current engine); entries whose speedup
# drops below 1.0 are flagged "regression": true, and the top-level
# best_wall_ms field tracks the fastest recording across the history.
#
# Usage: scripts/bench_summary.sh --pr N [--algo LABEL] [--insts N] [--skip N] [--detailed N] [--jobs N]
set -euo pipefail
cd "$(dirname "$0")/.."

INSTS=100000
SKIP=80000
DETAILED=20000
JOBS=0
PR=""
ALGO="interval-parallel chunked simulation (epoch-aligned checkpoint series), on the two-tier engine"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --insts) INSTS="$2"; shift 2 ;;
        --skip) SKIP="$2"; shift 2 ;;
        --detailed) DETAILED="$2"; shift 2 ;;
        --jobs) JOBS="$2"; shift 2 ;;
        --pr) PR="$2"; shift 2 ;;
        --algo) ALGO="$2"; shift 2 ;;
        *) echo "usage: $0 --pr N [--algo LABEL] [--insts N] [--skip N] [--detailed N] [--jobs N]" >&2; exit 2 ;;
    esac
done
if [[ -z "$PR" ]]; then
    echo "error: --pr N is required (the PR number this recording belongs to)" >&2
    echo "usage: $0 --pr N [--algo LABEL] [--insts N] [--skip N] [--detailed N] [--jobs N]" >&2
    exit 2
fi

cargo build --release -p smtx-bench

NAIVE=./target/release/fig5_naive
FAST=./target/release/fig5
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== correctness: every mode must print identical rows =="
diff <("$NAIVE" --insts 2000) <("$FAST" --insts 2000 --jobs "$JOBS") \
    && echo "ok: naive == runner at skip 0"
"$FAST" --insts 2000 --skip 6000 > "$TMP/ref.txt"
for mode in "--checkpoint off" "--idle-skip off" "--checkpoint off --idle-skip off"; do
    # shellcheck disable=SC2086
    diff "$TMP/ref.txt" <("$FAST" --insts 2000 --skip 6000 $mode) \
        && echo "ok: fast-forward rows independent of: $mode"
done
diff "$TMP/ref.txt" <("$NAIVE" --insts 2000 --skip 6000) \
    && echo "ok: naive == runner under fast-forward"
diff "$TMP/ref.txt" <("$FAST" --insts 2000 --skip 6000 --check on) \
    && echo "ok: --check is observation-only (identical rows)"
# 12k instructions span two whole 5000-instruction epochs, so --intervals 8
# genuinely splits the window (clamped to one chunk per epoch) instead of
# degenerating to the monolithic case.
diff <("$FAST" --insts 12000 --jobs "$JOBS") \
     <("$FAST" --insts 12000 --jobs "$JOBS" --intervals 8) \
    && echo "ok: --intervals is scheduling-only at skip 0 (identical rows)"
diff <("$FAST" --insts 12000 --skip 6000 --jobs "$JOBS") \
     <("$FAST" --insts 12000 --skip 6000 --jobs "$JOBS" --intervals 8) \
    && echo "ok: --intervals is scheduling-only under fast-forward (identical rows)"

ms() { # ms <out-var> <cmd...>
    local __var=$1; shift
    local t0 t1
    t0=$(date +%s%N); "$@" > /dev/null; t1=$(date +%s%N)
    printf -v "$__var" '%d' $(( (t1 - t0) / 1000000 ))
}

echo "== timing fig5: pr1 path / idle skip / two tier =="
ms PR1_MS   "$FAST" --insts "$INSTS" --jobs "$JOBS" --checkpoint off --idle-skip off
echo "pr1_path   (--insts $INSTS, checkpoint+skipping off): ${PR1_MS} ms"
ms IDLE_MS  "$FAST" --insts "$INSTS" --jobs "$JOBS"
echo "idle_skip  (--insts $INSTS):                          ${IDLE_MS} ms"
ms TWO_MS   "$FAST" --insts "$DETAILED" --skip "$SKIP" --jobs "$JOBS" --json "$TMP/fig5.json"
echo "two_tier   (--insts $DETAILED --skip $SKIP):          ${TWO_MS} ms"
ms CHECK_MS "$FAST" --insts "$DETAILED" --skip "$SKIP" --jobs "$JOBS" --check on
echo "two_tier_check (same window, --check on):             ${CHECK_MS} ms"
ms IPAR_MS  "$FAST" --insts "$DETAILED" --skip "$SKIP" --jobs "$JOBS" --intervals 4
echo "interval_par (same window, --intervals 4):            ${IPAR_MS} ms"

echo "== timing fig2 and fig7 (pr1 path, then two tier) =="
ms FIG2_PR1 ./target/release/fig2 --insts "$INSTS" --jobs "$JOBS" --checkpoint off --idle-skip off
ms FIG2_MS ./target/release/fig2 --insts "$DETAILED" --skip "$SKIP" --jobs "$JOBS" --json "$TMP/fig2.json"
echo "fig2: pr1 path ${FIG2_PR1} ms, two tier (--insts $DETAILED --skip $SKIP) ${FIG2_MS} ms"
ms FIG7_PR1 ./target/release/fig7 --insts "$INSTS" --jobs "$JOBS" --checkpoint off --idle-skip off
ms FIG7_MS ./target/release/fig7 --insts "$DETAILED" --skip "$SKIP" --jobs "$JOBS" --json "$TMP/fig7.json"
echo "fig7: pr1 path ${FIG7_PR1} ms, two tier (--insts $DETAILED --skip $SKIP) ${FIG7_MS} ms"

python3 - "$TMP" "$PR1_MS" "$IDLE_MS" "$TWO_MS" "$FIG2_MS" "$FIG7_MS" "$FIG2_PR1" "$FIG7_PR1" "$CHECK_MS" "$IPAR_MS" "$PR" "$ALGO" <<'PY'
import json, os, sys

tmp = sys.argv[1]
pr1_ms, idle_ms, two_ms, fig2_ms, fig7_ms, fig2_pr1, fig7_pr1, check_ms, ipar_ms, pr = map(int, sys.argv[2:12])
algo = sys.argv[12]

def load(path):
    return json.load(open(path)) if os.path.exists(path) else None

def record(name, report, wall_ms, modes, algorithm, pr1_path_ms):
    """Write BENCH_<name>.json, carrying forward the perf trajectory.

    Each history entry is keyed by the PR that recorded it (explicit --pr,
    never positional), labeled with that PR's engine algorithm. The speedup
    baseline is the latest earlier PR's recorded wall time; a figure
    measured for the first time compares against the PR 1 algorithm
    (checkpointing and skipping off) timed on the current build. A re-run
    within one PR replaces that PR's entry. Entries slower than their
    baseline carry "regression": true, and best_wall_ms tracks the fastest
    wall time across the whole history.
    """
    out = f"BENCH_{name}.json"
    prev = load(out)
    history = (prev or {}).get("history", [])
    if prev and not history:
        # The PR 1 recording predates the trajectory format: fold its
        # headline numbers into the first history entry.
        history = [{
            "pr": 1,
            "wall_ms": prev["wall_ms"],
            "algorithm": "memoizing parallel runner (PR 1)",
            "speedup": prev.get("speedup"),
        }]
    history = [h for h in history if h.get("pr") != pr]
    baseline_ms = history[-1]["wall_ms"] if history else pr1_path_ms
    speedup = round(baseline_ms / max(wall_ms, 1), 2)
    entry = {
        "pr": pr,
        "wall_ms": wall_ms,
        "algorithm": algorithm,
        "speedup": speedup,
    }
    if speedup < 1.0:
        entry["regression"] = True
    history.append(entry)
    report["modes"] = modes
    report["history"] = history
    report["speedup"] = speedup
    report["best_wall_ms"] = min(h["wall_ms"] for h in history)
    json.dump(report, open(out, "w"), indent=2)
    open(out, "a").write("\n")
    note = " REGRESSION" if speedup < 1.0 else ""
    print(f"{out}: PR {pr}: {wall_ms} ms, {speedup}x vs previous recording ({baseline_ms} ms){note}")

record("fig5", load(f"{tmp}/fig5.json"), two_ms,
       {"pr1_path_ms": pr1_ms, "idle_skip_ms": idle_ms, "two_tier_ms": two_ms,
        "two_tier_check_ms": check_ms, "interval_par_ms": ipar_ms},
       algo, pr1_ms)
record("fig2", load(f"{tmp}/fig2.json"), fig2_ms,
       {"pr1_path_ms": fig2_pr1, "two_tier_ms": fig2_ms}, algo, fig2_pr1)
record("fig7", load(f"{tmp}/fig7.json"), fig7_ms,
       {"pr1_path_ms": fig7_pr1, "two_tier_ms": fig7_ms}, algo, fig7_pr1)
PY
