#!/usr/bin/env bash
# Measures the fig5 experiment wall clock and records it in BENCH_fig5.json.
#
# Two comparisons:
#   1. fig5_naive vs fig5 (same build) — the win from the memoizing runner
#      alone: fig5_naive re-simulates every table cell serially, exactly as
#      the original experiment loop did, while fig5 deduplicates the job
#      list and shares the reference/perfect-baseline runs.
#   2. --seed-ms MS (optional) — a wall time for the pre-optimization
#      simulator core running the serial loop, measured externally (the
#      seed tree does not build offline, so it cannot be rebuilt here).
#      Folded into the report as the end-to-end speedup.
#
# Both binaries must print identical rows (the runner is an optimization,
# not an approximation); the script verifies that before timing.
#
# Usage: scripts/bench_summary.sh [--insts N] [--jobs N] [--seed-ms MS]
set -euo pipefail
cd "$(dirname "$0")/.."

INSTS=100000
JOBS=0
SEED_MS=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --insts) INSTS="$2"; shift 2 ;;
        --jobs) JOBS="$2"; shift 2 ;;
        --seed-ms) SEED_MS="$2"; shift 2 ;;
        *) echo "usage: $0 [--insts N] [--jobs N] [--seed-ms MS]" >&2; exit 2 ;;
    esac
done

cargo build --release -p smtx-bench

NAIVE=./target/release/fig5_naive
FAST=./target/release/fig5
REPORT=$(mktemp)
trap 'rm -f "$REPORT"' EXIT

echo "== correctness: rows must match =="
diff <("$NAIVE" --insts 2000) <("$FAST" --insts 2000 --jobs "$JOBS") \
    && echo "identical at --insts 2000"

echo "== timing fig5_naive --insts $INSTS (serial, non-memoized) =="
n0=$(date +%s%N); "$NAIVE" --insts "$INSTS" > /dev/null; n1=$(date +%s%N)
NAIVE_MS=$(( (n1 - n0) / 1000000 ))
echo "${NAIVE_MS} ms"

echo "== timing fig5 --insts $INSTS --jobs $JOBS (runner) =="
f0=$(date +%s%N); "$FAST" --insts "$INSTS" --jobs "$JOBS" --json "$REPORT" > /dev/null; f1=$(date +%s%N)
FAST_MS=$(( (f1 - f0) / 1000000 ))
echo "${FAST_MS} ms"

python3 - "$REPORT" "$NAIVE_MS" "$FAST_MS" "$SEED_MS" <<'PY'
import json, sys
report_path, naive_ms, fast_ms = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
seed_ms = int(sys.argv[4]) if sys.argv[4] else None
report = json.load(open(report_path))
report["naive_same_build"] = {
    "binary": "fig5_naive",
    "wall_ms": naive_ms,
    "algorithm": "serial per-cell simulation, no memoization",
    "speedup": round(naive_ms / max(fast_ms, 1), 2),
}
if seed_ms is not None:
    report["seed_baseline"] = {
        "wall_ms": seed_ms,
        "provenance": "pre-optimization simulator core + serial loop, measured externally",
        "speedup": round(seed_ms / max(fast_ms, 1), 2),
    }
    report["speedup"] = report["seed_baseline"]["speedup"]
else:
    report["speedup"] = report["naive_same_build"]["speedup"]
json.dump(report, open("BENCH_fig5.json", "w"), indent=2)
open("BENCH_fig5.json", "a").write("\n")
print(f"speedup: {report['speedup']}x  (target >= 3x)  -> BENCH_fig5.json")
PY
