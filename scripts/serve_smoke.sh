#!/usr/bin/env bash
# End-to-end smoke of the smtxd service (the `serve-smoke` CI job):
#
#   1. boot smtxd on an ephemeral port;
#   2. submit a fig5-shaped job via smtx-client and wait for the result;
#   3. run the fig5 binary directly with the same budget/seed/skip and
#      diff the returned "columns"/"rows" JSON fragments byte-for-byte —
#      the service's core guarantee (DESIGN.md §10);
#   4. resubmit the same spec and require a dedup answer plus a non-zero
#      shared-cache hit count in /metrics;
#   5. shut the daemon down gracefully and require a clean exit.
#
# Usage: scripts/serve_smoke.sh [--insts N] [--seed N] [--skip N]
set -euo pipefail
cd "$(dirname "$0")/.."

INSTS=8000
SEED=42
SKIP=20000
while [[ $# -gt 0 ]]; do
    case "$1" in
        --insts) INSTS="$2"; shift 2 ;;
        --seed) SEED="$2"; shift 2 ;;
        --skip) SKIP="$2"; shift 2 ;;
        *) echo "usage: $0 [--insts N] [--seed N] [--skip N]" >&2; exit 2 ;;
    esac
done

SMTXD=./target/release/smtxd
CLIENT=./target/release/smtx-client
FIG5=./target/release/fig5
for bin in "$SMTXD" "$CLIENT" "$FIG5"; do
    [[ -x "$bin" ]] || { echo "missing $bin — build with: cargo build --release" >&2; exit 1; }
done

WORK=$(mktemp -d)
cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# 1. Boot on port 0 and scrape the bound address from the startup line.
"$SMTXD" --port 0 --workers 2 --skip "$SKIP" > "$WORK/smtxd.log" 2>&1 &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^smtxd listening on //p' "$WORK/smtxd.log")
    [[ -n "$ADDR" ]] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORK/smtxd.log" >&2; exit 1; }
    sleep 0.2
done
[[ -n "$ADDR" ]] || { echo "smtxd did not report its address" >&2; cat "$WORK/smtxd.log" >&2; exit 1; }
echo "smtxd up at $ADDR"

# 2. Served fig5.
"$CLIENT" --addr "$ADDR" submit --experiment fig5 \
    --insts "$INSTS" --seed "$SEED" --wait --out "$WORK/served.json"

# 3. Direct fig5 with the daemon's engine settings; compare the
#    columns/rows fragment (wall clock and cache counters legitimately
#    differ between a fresh process and a warm daemon).
"$FIG5" --insts "$INSTS" --seed "$SEED" --skip "$SKIP" --json "$WORK/direct.json" > /dev/null
python3 - "$WORK/served.json" "$WORK/direct.json" <<'EOF'
import json, sys
served, direct = (json.load(open(p)) for p in sys.argv[1:3])
for field in ("experiment", "insts", "seed", "skip", "columns", "rows"):
    assert served[field] == direct[field], (
        f"{field} differs:\nserved: {served[field]}\ndirect: {direct[field]}")
frag = lambda r: json.dumps({"columns": r["columns"], "rows": r["rows"]}, sort_keys=True)
assert frag(served) == frag(direct)
print(f"served rows identical to direct fig5 ({len(served['rows'])} rows)")
EOF

# 4. Dedup + shared caches: the same spec must answer without re-queueing,
#    and the runner counters must show cache activity.
RESUBMIT=$("$CLIENT" --addr "$ADDR" submit --experiment fig5 --insts "$INSTS" --seed "$SEED")
echo "$RESUBMIT" | grep -q '"deduped": true' \
    || { echo "resubmission was not deduped: $RESUBMIT" >&2; exit 1; }
METRICS=$("$CLIENT" --addr "$ADDR" metrics)
echo "$METRICS" | grep -q '^smtxd_jobs_deduped 1$' \
    || { echo "dedup counter missing:"; echo "$METRICS"; exit 1; } >&2
CKHITS=$(echo "$METRICS" | sed -n 's/^smtxd_runner_checkpoint_hits //p')
[[ "$CKHITS" -gt 0 ]] \
    || { echo "expected checkpoint cache hits, got '$CKHITS'"; echo "$METRICS"; exit 1; } >&2
echo "dedup + shared caches ok (checkpoint hits: $CKHITS)"

# 5. Graceful shutdown: the daemon must drain and exit by itself.
"$CLIENT" --addr "$ADDR" shutdown > /dev/null
for _ in $(seq 1 50); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "smtxd did not exit after shutdown" >&2
    exit 1
fi
wait "$DAEMON_PID"
DAEMON_PID=""
grep -q "drained and stopped" "$WORK/smtxd.log" \
    || { echo "missing clean-exit line:" >&2; cat "$WORK/smtxd.log" >&2; exit 1; }
echo "serve smoke ok"
