#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# Sections accumulate in results/all-<timestamp>.txt (the format
# scripts/fill_experiments.py consumes); pass --insts N to change the
# per-thread instruction budget (default 300k).
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
mkdir -p results
OUT="results/all-$(date +%Y%m%d-%H%M%S).txt"
cargo build --release -p smtx-bench

for exp in table2 fig2 fig3 fig5 table3 fig6 table4 fig7; do
    echo "=== $exp ===" | tee -a "$OUT"
    cargo run --quiet --release -p smtx-bench --bin "$exp" -- "${ARGS[@]}" \
        | tee -a "$OUT"
done
echo "EXIT-ALL" >> "$OUT"
python3 scripts/fill_experiments.py
echo "wrote $OUT and refreshed EXPERIMENTS.md"
