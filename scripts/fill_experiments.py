#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from results/all.txt sections."""
import pathlib
import re

root = pathlib.Path(__file__).resolve().parent.parent
sections = {}
# Oldest first: sections from the newest run win.
for path in sorted((root / "results").glob("all*.txt"), key=lambda p: p.stat().st_mtime):
    current = None
    for line in path.read_text().splitlines():
        m = re.match(r"^=== (\w+) ===$", line)
        if m:
            current = m.group(1)
            sections[current] = []  # later files override earlier ones
        elif current:
            sections[current].append(line)

md = (root / "EXPERIMENTS.md").read_text()
for name, lines in sections.items():
    body = "\n".join(["```"] + [l for l in lines if l.strip()] + ["```"])
    md = md.replace(f"<!-- {name.upper()} -->", body)
(root / "EXPERIMENTS.md").write_text(md)
print("filled:", ", ".join(sections))
