//! TLB-miss architecture shoot-out on one benchmark.
//!
//! Runs the `compress` kernel (the most TLB-intensive workload of the
//! paper's suite) under all five exception architectures and prints the
//! paper's headline metric — penalty cycles per miss — for each.
//!
//! ```sh
//! cargo run --release --example tlb_shootout [insts]
//! ```

use smtx::core::{ExnMechanism, Machine, MachineConfig};
use smtx::workloads::{kernel_reference, load_kernel, Kernel};

fn main() {
    let insts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let kernel = Kernel::Compress;
    let seed = 42;

    // The denominator: the workload's intrinsic miss count over this
    // instruction window (reference interpreter with an architectural
    // 64-entry DTLB).
    let mut world = kernel_reference(kernel, seed);
    world.run(insts);
    let misses = world.interp.dtlb_misses();
    println!(
        "{}: {insts} instructions, {misses} architectural TLB misses\n",
        kernel.name()
    );

    let mut perfect_cycles = 0;
    println!(
        "{:<15} {:>10} {:>8} {:>14} {:>10}",
        "mechanism", "cycles", "IPC", "penalty/miss", "spawned"
    );
    for mech in ExnMechanism::ALL {
        let config = MachineConfig::paper_baseline(mech).with_threads(2);
        let mut m = Machine::new(config);
        load_kernel(&mut m, 0, kernel, seed);
        m.set_budget(0, insts);
        let stats = m.run(u64::MAX);
        if mech == ExnMechanism::PerfectTlb {
            perfect_cycles = stats.cycles;
        }
        let penalty = (stats.cycles as f64 - perfect_cycles as f64) / misses as f64;
        println!(
            "{:<15} {:>10} {:>8.2} {:>14.2} {:>10}",
            mech.label(),
            stats.cycles,
            stats.ipc(),
            penalty,
            stats.handlers_spawned
        );
    }
    println!("\n(paper Fig. 5/6: traditional ≈ 22.7, multithreaded ≈ 11.7, hardware ≈ 7.3)");
}
