//! Quickstart: assemble a tiny program, run it on the SMT machine with
//! multithreaded exception handling, and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smtx::core::{ExnMechanism, Machine, MachineConfig};
use smtx::isa::{ProgramBuilder, Reg};
use smtx::mem::PAGE_SIZE;
use smtx::workloads::pal_handler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a program with the builder: walk 100 pages of an array,
    //    summing. Every new page is a TLB miss.
    let data_base: u64 = 0x2000_0000;
    let pages: u64 = 100;
    let mut b = ProgramBuilder::new();
    b.li(Reg(10), data_base);
    b.li(Reg(11), pages * PAGE_SIZE);
    b.li(Reg(12), 0); // offset
    b.li(Reg(13), 0); // sum
    b.label("loop");
    b.add(Reg(1), Reg(10), Reg(12));
    b.ldq(Reg(2), Reg(1), 0);
    b.add(Reg(13), Reg(13), Reg(2));
    b.addi(Reg(12), Reg(12), 2048);
    b.sub(Reg(3), Reg(12), Reg(11));
    b.blt(Reg(3), "loop");
    b.halt();
    let program = b.build()?;
    println!("program ({} instructions):\n{}", program.len(), program);

    // 2. Build the paper's baseline machine (8-wide, 128-entry window,
    //    64-entry DTLB) with the multithreaded exception architecture and
    //    one spare context for handlers.
    let config = MachineConfig::paper_baseline(ExnMechanism::Multithreaded);
    let mut m = Machine::new(config);
    m.install_pal_handler(&pal_handler());

    // 3. Load the program, map its data, fill in some values.
    let space = m.attach_program(0, &program);
    let (sp, pm, alloc) = m.vm_parts(space);
    sp.map_region(pm, alloc, data_base, pages);
    for p in 0..pages {
        for off in (0..PAGE_SIZE).step_by(2048) {
            sp.write_u64(pm, data_base + p * PAGE_SIZE + off, p + 1)?;
        }
    }

    // 4. Run to completion and look at what happened.
    let stats = m.run(1_000_000);
    println!("cycles:            {}", stats.cycles);
    println!("user insts:        {}", stats.retired(0));
    println!("IPC:               {:.2}", stats.ipc());
    println!("handlers spawned:  {}", stats.handlers_spawned);
    println!("TLB fills:         {}", stats.fills_committed);
    println!("traps (fallbacks): {}", stats.traps);
    assert_eq!(m.int_regs(0)[13], (1..=pages).sum::<u64>() * 4, "sum of 4 samples/page");
    println!("checksum OK: r13 = {}", m.int_regs(0)[13]);
    Ok(())
}
