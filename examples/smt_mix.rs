//! Multiprogrammed SMT: three applications plus one idle context
//! (the paper's Fig. 7 scenario) on a single mix.
//!
//! Shows how exception threads behave when the machine is already busy:
//! the idle context serves TLB misses for all three applications, and the
//! handler-thread activity statistic reproduces the paper's observation
//! that one spare context is enough (~20% average activity).
//!
//! ```sh
//! cargo run --release --example smt_mix [insts]
//! ```

use smtx::core::{ExnMechanism, Machine, MachineConfig};
use smtx::workloads::{load_kernel, Kernel};

fn main() {
    let insts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let mix = [Kernel::Compress, Kernel::Gcc, Kernel::Murphi]; // cmp-gcc-mph
    println!(
        "mix: {} | {} instructions per thread\n",
        mix.iter().map(|k| k.tag()).collect::<Vec<_>>().join("-"),
        insts
    );

    for mech in [
        ExnMechanism::Traditional,
        ExnMechanism::Multithreaded,
        ExnMechanism::QuickStart,
        ExnMechanism::Hardware,
    ] {
        let config = MachineConfig::paper_baseline(mech).with_threads(4);
        let mut m = Machine::new(config);
        for (tid, &k) in mix.iter().enumerate() {
            load_kernel(&mut m, tid, k, 42 + tid as u64);
            m.set_budget(tid, insts);
        }
        let stats = m.run(u64::MAX);
        let handler_activity =
            100.0 * stats.handler_active_cycles as f64 / stats.cycles as f64;
        println!(
            "{:<15} cycles {:>9}  aggregate IPC {:>5.2}  handler thread active {:>5.1}%",
            mech.label(),
            stats.cycles,
            stats.ipc(),
            handler_activity
        );
    }
    println!("\n(paper §5.5: one exception thread active 5-40% of the time, ~20% average)");
}
