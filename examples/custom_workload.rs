//! Bring your own workload: write a pointer-chasing microbenchmark with
//! the assembler, verify it against the reference interpreter, then
//! measure how much of its TLB pain each exception architecture recovers.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use smtx::core::{ExnMechanism, Machine, MachineConfig};
use smtx::isa::{Program, ProgramBuilder, Reg};
use smtx::mem::{AddressSpace, PhysAlloc, PhysMem, PAGE_SIZE};
use smtx::workloads::{pal_handler, reference_world};

const POOL: u64 = 0x3000_0000;
const POOL_PAGES: u64 = 96; // more pages than the 64-entry DTLB maps

/// One load-to-load dependent chase per iteration: every hop can be a TLB
/// miss on the critical path — the worst case for trapping.
fn chase_program(hops: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg(10), POOL);
    b.li(Reg(29), hops);
    b.label("loop");
    b.ldq(Reg(10), Reg(10), 0);
    b.addi(Reg(29), Reg(29), -1);
    b.bne(Reg(29), "loop");
    b.halt();
    b.build().expect("assembles")
}

/// A random cyclic permutation of one slot per page.
fn setup_chain(space: &mut AddressSpace, pm: &mut PhysMem, alloc: &mut PhysAlloc) {
    space.map_region(pm, alloc, POOL, POOL_PAGES);
    // Deterministic pseudo-shuffle of the pages.
    let mut order: Vec<u64> = (0..POOL_PAGES).collect();
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    for w in 0..order.len() {
        let from = POOL + order[w] * PAGE_SIZE;
        let to = POOL + order[(w + 1) % order.len()] * PAGE_SIZE;
        space.write_u64(pm, from, to).expect("mapped");
    }
}

fn main() {
    let hops = 20_000;
    let program = chase_program(hops);

    // Sanity: the reference interpreter agrees the chain is cyclic and
    // counts its architectural misses.
    let mut world = reference_world(&program, setup_chain);
    world.run(u64::MAX);
    let misses = world.interp.dtlb_misses();
    println!("pointer chase: {hops} hops over {POOL_PAGES} pages, {misses} architectural misses\n");

    let mut perfect = 0u64;
    for mech in ExnMechanism::ALL {
        let mut m = Machine::new(MachineConfig::paper_baseline(mech).with_threads(2));
        m.install_pal_handler(&pal_handler());
        let space = m.attach_program(0, &program);
        let (sp, pm, alloc) = m.vm_parts(space);
        setup_chain(sp, pm, alloc);
        let cycles = m.run(u64::MAX).cycles;
        assert_eq!(m.int_regs(0)[10], world.interp.int_regs()[10], "chase must agree");
        if mech == ExnMechanism::PerfectTlb {
            perfect = cycles;
        }
        println!(
            "{:<15} cycles {cycles:>9}  penalty/miss {:>7.2}",
            mech.label(),
            (cycles as f64 - perfect as f64) / misses as f64
        );
    }
    println!("\nA serial chase hides nothing: the gap between traditional and");
    println!("multithreaded here is almost exactly the squash+refetch cost.");
}
